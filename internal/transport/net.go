package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
)

// The net backend carries protocol traffic over real OS sockets on
// loopback. Each virtual host keeps the netem.Addr identity the protocols
// were written against; a per-group directory maps virtual listen addresses
// to the real 127.0.0.1:<ephemeral> sockets behind them.
//
// Concurrency model: every protocol callback runs on the group's single run
// loop goroutine, which also pumps the shared sim.Engine against the wall
// clock — so protocol timers (choke intervals, tracker re-announce, RTO-ish
// application timeouts) fire live with the same code paths the simulation
// uses, and protocol state needs no locks on either backend. Socket reader
// and writer goroutines never touch protocol state directly; they post
// closures into the loop.
//
// Stream realisation: the modelled stack counts payload bytes instead of
// storing them, so the net backend frames each SendMessage/Write as a small
// header plus zero padding sized to the declared wire length — live runs
// push real bytes through real TCP with the modelled traffic shape. The
// framed application values themselves travel through an in-process
// mailbox keyed by (connID, direction, seq); the byte stream carries their
// length and ordering. (A cross-process deployment would swap the mailbox
// for a codec at this one seam.)

// Wire framing constants.
const (
	helloMagic = 0x77503250 // "wP2P"
	helloLen   = 19         // magic(4) ver(1) ip(4) port(2) connID(8)
	frameHdr   = 13         // kind(1) seq(8) len(4)

	kindMsg byte = 1 // framed application message, len = modelled wireLen
	kindRaw byte = 2 // raw Write bytes, len = count

	// deliverChunk bounds how many padding bytes collapse into one
	// OnDeliver callback, so multi-megabyte frames report streaming
	// progress instead of one burst.
	deliverChunk = 256 << 10
)

// dialTimeout bounds a live connect attempt; mapErr turns its expiry into
// ErrTimeout, matching the sim's retransmission-limit semantics.
const dialTimeout = 5 * time.Second

// mapErr folds OS socket errors onto the transport error contract.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return ErrReset
	case errors.Is(err, net.ErrClosed):
		return ErrClosed
	case os.IsTimeout(err):
		return ErrTimeout
	default:
		return err
	}
}

// Group is a set of virtual hosts sharing one loopback address directory,
// one sim.Engine, and one run loop. It is the net-backend analogue of a
// simulated world.
type Group struct {
	engine *sim.Engine
	start  time.Time

	inject  chan func()
	done    chan struct{} // closed by Close: loop should exit
	stopped chan struct{} // closed by the loop on exit
	once    sync.Once

	// hostMu guards only the hosts map: Host may be called from any
	// goroutine, including loop callbacks.
	hostMu sync.Mutex
	hosts  map[netem.IP]*Net

	// Loop-goroutine state (no locks: only the run loop touches these).
	dir        map[netem.Addr]string // virtual listen addr -> real host:port
	conns      map[*netConn]struct{} // both endpoints of a pair share a connID
	vals       map[valKey]any
	nextConnID uint64
}

type valKey struct {
	connID uint64
	dir    byte
	seq    uint64
}

// NewGroup starts a run loop around a fresh engine seeded with seed.
func NewGroup(seed int64) *Group {
	g := &Group{
		engine:  sim.NewEngine(sim.WithSeed(seed)),
		start:   time.Now(),
		inject:  make(chan func(), 1024),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		dir:     make(map[netem.Addr]string),
		hosts:   make(map[netem.IP]*Net),
		conns:   make(map[*netConn]struct{}),
		vals:    make(map[valKey]any),
	}
	go g.loop()
	return g
}

// loop is the single goroutine on which the engine advances and every
// protocol callback runs.
func (g *Group) loop() {
	defer close(g.stopped)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-g.done:
			return
		case fn := <-g.inject:
			g.engine.RunUntil(time.Since(g.start))
			fn()
		case <-tick.C:
			g.engine.RunUntil(time.Since(g.start))
		}
	}
}

// post queues fn onto the run loop from a socket goroutine. Posts from the
// same goroutine execute in order.
func (g *Group) post(fn func()) {
	select {
	case g.inject <- fn:
	case <-g.done:
	}
}

// Do runs fn on the loop goroutine and waits for it — the way tests and
// drivers construct protocol state and inspect it safely. It must not be
// called from inside a callback (which already runs on the loop).
func (g *Group) Do(fn func()) {
	ran := make(chan struct{})
	select {
	case g.inject <- func() { fn(); close(ran) }:
		select {
		case <-ran:
		case <-g.stopped:
		}
	case <-g.stopped:
	}
}

// Engine returns the shared engine. Touch it only from inside Do or a
// protocol callback.
func (g *Group) Engine() *sim.Engine { return g.engine }

// Host returns the transport endpoint for a virtual IP, creating it on
// first use. Safe from any goroutine, including loop callbacks.
func (g *Group) Host(ip netem.IP) *Net {
	g.hostMu.Lock()
	defer g.hostMu.Unlock()
	if h, ok := g.hosts[ip]; ok {
		return h
	}
	t := &Net{
		group:     g,
		ip:        ip,
		nextPort:  ephemeralBase,
		inUse:     make(map[uint16]bool),
		listeners: make(map[uint16]*netListener),
	}
	g.hosts[ip] = t
	return t
}

// Close aborts every live connection and listener and stops the run loop.
func (g *Group) Close() {
	g.Do(func() {
		for c := range g.conns {
			c.Abort()
		}
		g.hostMu.Lock()
		hosts := make([]*Net, 0, len(g.hosts))
		for _, h := range g.hosts {
			hosts = append(hosts, h)
		}
		g.hostMu.Unlock()
		for _, h := range hosts {
			for _, l := range h.listeners {
				l.Close()
			}
		}
	})
	g.once.Do(func() { close(g.done) })
	<-g.stopped
}

// ephemeralBase mirrors the modelled stack's IANA dynamic range.
const ephemeralBase = 49152

// Net is one virtual host's real-socket transport (Interface).
type Net struct {
	group *Group
	ip    netem.IP

	// Loop-goroutine state.
	nextPort  uint16
	inUse     map[uint16]bool
	listeners map[uint16]*netListener
}

// Engine returns the group's engine.
func (t *Net) Engine() *sim.Engine { return t.group.engine }

// Addr returns the host's virtual address with the given port.
func (t *Net) Addr(port uint16) netem.Addr { return netem.Addr{IP: t.ip, Port: port} }

// allocPort mirrors tcp.Stack.allocPort on the virtual port space: skip
// listeners and ports held by live conns; surface exhaustion as an error.
func (t *Net) allocPort() (uint16, error) {
	for tries := 0; tries < 1<<14; tries++ {
		p := t.nextPort
		t.nextPort++
		if t.nextPort < ephemeralBase {
			t.nextPort = ephemeralBase
		}
		if _, taken := t.listeners[p]; taken {
			continue
		}
		if t.inUse[p] {
			continue
		}
		return p, nil
	}
	return 0, ErrPortExhausted
}

// Listen binds the virtual port, backed by a fresh real loopback listener.
func (t *Net) Listen(port uint16, onAccept func(Conn)) (Listener, error) {
	vaddr := netem.Addr{IP: t.ip, Port: port}
	if _, taken := t.group.dir[vaddr]; taken {
		return nil, fmt.Errorf("transport: listen %s: %w", vaddr, ErrAddrInUse)
	}
	real, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", vaddr, mapErr(err))
	}
	l := &netListener{host: t, port: port, real: real, onAccept: onAccept}
	t.group.dir[vaddr] = real.Addr().String()
	t.listeners[port] = l
	go l.acceptLoop()
	return l, nil
}

// Dial opens a connection to a remote virtual address. The connect runs on
// its own goroutine; failures arrive through OnClose exactly as the sim
// backend reports them (refused -> ErrReset, unreachable -> ErrTimeout).
func (t *Net) Dial(remote netem.Addr) (Conn, error) {
	port, err := t.allocPort()
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", remote, err)
	}
	local := netem.Addr{IP: t.ip, Port: port}
	t.inUse[port] = true
	c := newNetConn(t, local, remote, true)
	real, ok := t.group.dir[remote]
	if !ok {
		// No listener directory entry: the virtual host refuses, like the
		// sim stack's RST to an unbound port. Deliver asynchronously so the
		// caller can set OnClose first.
		t.group.engine.Schedule(0, func() { c.teardown(ErrReset) })
		return c, nil
	}
	go c.runDial(real)
	return c, nil
}

// netListener accepts real connections for one virtual port.
type netListener struct {
	host     *Net
	port     uint16
	real     net.Listener
	onAccept func(Conn)
	closed   bool // loop-goroutine state
}

// Port returns the bound virtual port.
func (l *netListener) Port() uint16 { return l.port }

// Close unbinds the virtual port and closes the real socket. A handshake
// already in flight is refused with a RST once it reaches the loop — the
// stale onAccept can never run (the regression contract shared with the
// sim backend).
func (l *netListener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	vaddr := netem.Addr{IP: l.host.ip, Port: l.port}
	if l.host.group.dir[vaddr] == l.real.Addr().String() {
		delete(l.host.group.dir, vaddr)
	}
	if l.host.listeners[l.port] == l {
		delete(l.host.listeners, l.port)
	}
	l.real.Close()
}

func (l *netListener) acceptLoop() {
	for {
		sock, err := l.real.Accept()
		if err != nil {
			return // listener closed
		}
		go l.handshake(sock)
	}
}

// handshake reads the dialer's hello off the fresh socket, then hands the
// connection to the loop for acceptance.
func (l *netListener) handshake(sock net.Conn) {
	var buf [helloLen]byte
	sock.SetReadDeadline(time.Now().Add(dialTimeout))
	if _, err := io.ReadFull(sock, buf[:]); err != nil ||
		binary.BigEndian.Uint32(buf[0:4]) != helloMagic || buf[4] != 1 {
		rstClose(sock)
		return
	}
	sock.SetReadDeadline(time.Time{})
	remote := netem.Addr{
		IP:   netem.IP(binary.BigEndian.Uint32(buf[5:9])),
		Port: binary.BigEndian.Uint16(buf[9:11]),
	}
	connID := binary.BigEndian.Uint64(buf[11:19])
	l.host.group.post(func() { l.accept(sock, remote, connID) })
}

// accept (loop goroutine) delivers one handshaken socket to the
// application, or refuses it if the listener closed while it was in flight.
func (l *netListener) accept(sock net.Conn, remote netem.Addr, connID uint64) {
	if l.closed {
		rstClose(sock)
		return
	}
	local := netem.Addr{IP: l.host.ip, Port: l.port}
	c := newNetConn(l.host, local, remote, false)
	c.id = connID
	c.attach(sock)
	if l.onAccept != nil {
		l.onAccept(c)
	}
	if !c.closed && c.onEstablished != nil {
		c.onEstablished()
	}
}

// rstClose refuses a socket with a RST (linger 0) rather than a clean FIN,
// so the dialer observes ErrReset — the same refusal the sim stack sends.
func rstClose(sock net.Conn) {
	if tc, ok := sock.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	sock.Close()
}

// frame is one queued wire unit awaiting the writer goroutine.
type frame struct {
	kind  byte
	seq   uint64
	n     int
	close bool // graceful half-close sentinel
}

// netConn is one endpoint of a real-socket connection.
type netConn struct {
	host   *Net
	local  netem.Addr
	remote netem.Addr
	id     uint64
	dirOut byte // mailbox direction tag for frames we send

	// Loop-goroutine state.
	onEstablished func()
	onDeliver     func(int)
	onMessage     func(any)
	onClose       func(error)
	onWritable    func()
	closed        bool
	sendSeq       uint64

	// Shared state.
	buffered atomic.Int64

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []frame
	sock    net.Conn
	aborted bool
	ended   bool // Close or Abort queued; no further frames
}

func newNetConn(t *Net, local, remote netem.Addr, active bool) *netConn {
	c := &netConn{host: t, local: local, remote: remote}
	c.cond = sync.NewCond(&c.mu)
	if active {
		t.group.nextConnID++
		c.id = t.group.nextConnID
		c.dirOut = 0 // dialer -> acceptor
	} else {
		c.dirOut = 1 // acceptor -> dialer (id assigned from the hello)
	}
	t.group.conns[c] = struct{}{}
	return c
}

// runDial performs the live connect and hello on a dedicated goroutine.
func (c *netConn) runDial(realAddr string) {
	sock, err := net.DialTimeout("tcp", realAddr, dialTimeout)
	if err != nil {
		c.host.group.post(func() { c.teardown(mapErr(err)) })
		return
	}
	var hello [helloLen]byte
	binary.BigEndian.PutUint32(hello[0:4], helloMagic)
	hello[4] = 1
	binary.BigEndian.PutUint32(hello[5:9], uint32(c.local.IP))
	binary.BigEndian.PutUint16(hello[9:11], c.local.Port)
	binary.BigEndian.PutUint64(hello[11:19], c.id)
	if _, err := sock.Write(hello[:]); err != nil {
		rstClose(sock)
		c.host.group.post(func() { c.teardown(mapErr(err)) })
		return
	}
	c.host.group.post(func() {
		c.attach(sock)
		if !c.closed && c.onEstablished != nil {
			c.onEstablished()
		}
	})
}

// attach (loop goroutine) wires the live socket to the reader and writer
// goroutines, unless the conn was already torn down while connecting.
func (c *netConn) attach(sock net.Conn) {
	if tc, ok := sock.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.mu.Lock()
	if c.aborted || c.closed {
		c.mu.Unlock()
		rstClose(sock)
		return
	}
	c.sock = sock
	c.mu.Unlock()
	go c.runWriter(sock)
	go c.runReader(sock)
}

// LocalAddr returns the virtual local address.
func (c *netConn) LocalAddr() netem.Addr { return c.local }

// RemoteAddr returns the virtual remote address.
func (c *netConn) RemoteAddr() netem.Addr { return c.remote }

// Callback setters (loop goroutine).
func (c *netConn) SetOnEstablished(fn func())    { c.onEstablished = fn }
func (c *netConn) SetOnDeliver(fn func(n int))   { c.onDeliver = fn }
func (c *netConn) SetOnMessage(fn func(val any)) { c.onMessage = fn }
func (c *netConn) SetOnClose(fn func(err error)) { c.onClose = fn }
func (c *netConn) SetOnWritable(fn func())       { c.onWritable = fn }

// Buffered returns the bytes queued locally and not yet flushed to the
// kernel — the net backend's backpressure signal.
func (c *netConn) Buffered() int64 { return c.buffered.Load() }

// Write queues n raw payload bytes.
func (c *netConn) Write(n int) {
	if n <= 0 || c.closed {
		return
	}
	c.buffered.Add(int64(n))
	c.enqueue(frame{kind: kindRaw, n: n})
}

// SendMessage frames an application value occupying wireLen stream bytes.
// The value travels through the group mailbox; the socket carries its
// length, ordering, and padding.
func (c *netConn) SendMessage(val any, wireLen int) {
	if c.closed {
		return
	}
	seq := c.sendSeq
	c.sendSeq++
	c.host.group.vals[valKey{c.id, c.dirOut, seq}] = val
	if wireLen < frameHdr {
		wireLen = frameHdr
	}
	c.buffered.Add(int64(wireLen))
	c.enqueue(frame{kind: kindMsg, seq: seq, n: wireLen})
}

func (c *netConn) enqueue(f frame) {
	c.mu.Lock()
	if !c.ended {
		c.queue = append(c.queue, f)
		if f.close {
			c.ended = true
		}
		c.cond.Signal()
	}
	c.mu.Unlock()
}

// Close ends the stream gracefully: queued frames flush, the real socket
// half-closes, the local side observes ErrClosed and the peer drains the
// stream to EOF and observes nil.
func (c *netConn) Close() {
	if c.closed {
		return
	}
	c.enqueue(frame{close: true})
	c.teardown(ErrClosed)
}

// Abort tears the connection down immediately with a RST: local ErrClosed,
// peer ErrReset — the sim stack's Abort contract.
func (c *netConn) Abort() {
	if c.closed {
		return
	}
	c.mu.Lock()
	c.aborted = true
	c.ended = true
	c.queue = nil
	if c.sock != nil {
		rstClose(c.sock)
	}
	c.cond.Signal()
	c.mu.Unlock()
	c.teardown(ErrClosed)
}

// teardown (loop goroutine) finalises the conn exactly once and fires
// OnClose.
func (c *netConn) teardown(err error) {
	if c.closed {
		return
	}
	c.closed = true
	delete(c.host.group.conns, c)
	// Only in-flight values *addressed to us* are garbage now; the peer
	// endpoint may still drain what we already sent it.
	for k := range c.host.group.vals {
		if k.connID == c.id && k.dir != c.dirOut {
			delete(c.host.group.vals, k)
		}
	}
	if c.host.inUse[c.local.Port] {
		delete(c.host.inUse, c.local.Port)
	}
	if c.onClose != nil {
		c.onClose(err)
	}
}

// zeroPad is the shared padding source for frame bodies.
var zeroPad [64 << 10]byte

// runWriter drains the frame queue onto the socket.
func (c *netConn) runWriter(sock net.Conn) {
	var hdr [frameHdr]byte
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.aborted {
			if c.ended {
				c.mu.Unlock()
				if tc, ok := sock.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				return
			}
			c.cond.Wait()
		}
		if c.aborted {
			c.mu.Unlock()
			return
		}
		f := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()

		if f.close {
			if tc, ok := sock.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
		hdr[0] = f.kind
		binary.BigEndian.PutUint64(hdr[1:9], f.seq)
		binary.BigEndian.PutUint32(hdr[9:13], uint32(f.n))
		if _, err := sock.Write(hdr[:]); err != nil {
			c.writerFailed(mapErr(err))
			return
		}
		for pad := f.n - frameHdr; pad > 0; {
			chunk := pad
			if chunk > len(zeroPad) {
				chunk = len(zeroPad)
			}
			if _, err := sock.Write(zeroPad[:chunk]); err != nil {
				c.writerFailed(mapErr(err))
				return
			}
			pad -= chunk
		}
		c.buffered.Add(int64(-f.n))
		c.host.group.post(func() {
			if !c.closed && c.onWritable != nil {
				c.onWritable()
			}
		})
	}
}

func (c *netConn) writerFailed(err error) {
	c.host.group.post(func() { c.teardown(err) })
}

// runReader parses inbound frames and posts deliveries to the loop.
func (c *netConn) runReader(sock net.Conn) {
	var hdr [frameHdr]byte
	for {
		if _, err := io.ReadFull(sock, hdr[:]); err != nil {
			c.readerDone(err)
			return
		}
		kind := hdr[0]
		seq := binary.BigEndian.Uint64(hdr[1:9])
		n := int(binary.BigEndian.Uint32(hdr[9:13]))
		if kind != kindMsg && kind != kindRaw {
			c.readerDone(syscall.EPIPE)
			return
		}
		// Stream the body: the header's real bytes count toward the frame's
		// modelled n, then padding drains in bounded chunks so large frames
		// report incremental OnDeliver progress like the modelled stack
		// does. The reported increments always sum to exactly n.
		padding := n - frameHdr
		if padding < 0 {
			padding = 0
		}
		reported := 0
		consumed := frameHdr
		for padding > 0 {
			chunk := min(padding, deliverChunk)
			if _, err := io.CopyN(io.Discard, sock, int64(chunk)); err != nil {
				c.readerDone(err)
				return
			}
			consumed += chunk
			padding -= chunk
			if padding > 0 {
				inc := min(consumed, n) - reported
				reported += inc
				c.host.group.post(func() { c.deliver(inc) })
			}
		}
		final := n - reported
		isMsg := kind == kindMsg
		c.host.group.post(func() {
			c.deliver(final)
			if isMsg {
				c.deliverMsg(seq)
			}
		})
	}
}

// deliver (loop goroutine) reports in-order payload progress.
func (c *netConn) deliver(n int) {
	if c.closed || n <= 0 {
		return
	}
	if c.onDeliver != nil {
		c.onDeliver(n)
	}
}

// deliverMsg (loop goroutine) pops the framed value from the mailbox and
// fires OnMessage. Frames we receive carry the peer's direction tag.
func (c *netConn) deliverMsg(seq uint64) {
	key := valKey{c.id, 1 - c.dirOut, seq}
	val, ok := c.host.group.vals[key]
	if !ok {
		return
	}
	delete(c.host.group.vals, key)
	if c.closed {
		return
	}
	if c.onMessage != nil {
		c.onMessage(val)
	}
}

// readerDone maps the terminal read state: EOF after the peer's clean
// half-close means the stream ended (nil); anything else maps onto the
// error contract.
func (c *netConn) readerDone(err error) {
	mapped := mapErr(err)
	if errors.Is(err, io.EOF) {
		mapped = nil
	}
	c.host.group.post(func() { c.teardown(mapped) })
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Interface-satisfaction pins for the net backend.
var (
	_ Interface = (*Net)(nil)
	_ Conn      = (*netConn)(nil)
	_ Listener  = (*netListener)(nil)
)
