// Package transport defines the seam between the protocol implementations
// (bt, ed2k, gnutella, wp2p) and whatever carries their bytes. Two backends
// implement it:
//
//   - Sim adapts the deterministic packet-level tcp.Stack. It is a pure
//     pass-through — digests and exports are byte-identical to calling the
//     stack directly — so every simulation result is unaffected by the seam.
//   - Net carries the same protocol traffic over real OS sockets on
//     loopback, turning the protocol code into a deployable client/testbed
//     (the paper's Georgia-Tech-style live experiments become runnable).
//
// The interface mirrors the modelled stack's application surface: payload
// bytes are counted rather than stored (Write/OnDeliver move abstract
// counts; SendMessage frames an application value onto the stream at a
// declared wire length). The net backend realises those counts as real
// padded frames, so live transfers exercise real TCP with the same traffic
// shape the simulation models.
//
// Error contract (shared by both backends — the reason tcp's panics became
// errors): Listen on a taken port returns ErrAddrInUse; Dial with no free
// ephemeral port returns ErrPortExhausted; a dialled peer that refuses the
// connection reports ErrReset through OnClose; an unreachable peer reports
// ErrTimeout; local Close reports ErrClosed locally and a clean nil at the
// peer after all data is delivered.
package transport

import (
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
)

// Connection lifecycle errors, re-exported so protocol code depends only on
// the transport package. Both backends report these identical sentinel
// values (the net backend maps OS errno equivalents onto them).
var (
	// ErrTimeout: the peer stopped responding (sim: retransmission limit;
	// net: OS connect/read timeout).
	ErrTimeout = tcp.ErrTimeout
	// ErrReset: the peer aborted or refused the connection (sim: RST;
	// net: ECONNREFUSED / ECONNRESET).
	ErrReset = tcp.ErrReset
	// ErrClosed: the connection was closed locally.
	ErrClosed = tcp.ErrClosed
	// ErrAddrInUse: the listen port is taken (sim: registered listener;
	// net: EADDRINUSE or a registered virtual binding).
	ErrAddrInUse = tcp.ErrAddrInUse
	// ErrPortExhausted: no ephemeral port is free for a dial.
	ErrPortExhausted = tcp.ErrPortExhausted
)

// Conn is one endpoint of a bidirectional connection. Callbacks must be set
// immediately after Dial or inside the accept callback, before control
// returns to the transport; they are invoked on the transport's event
// goroutine (the simulation loop, or the net backend's run loop), so
// protocol code is single-threaded on either backend.
type Conn interface {
	// LocalAddr returns the virtual address of this endpoint.
	LocalAddr() netem.Addr
	// RemoteAddr returns the virtual address of the peer.
	RemoteAddr() netem.Addr

	// Write appends n abstract payload bytes to the send stream.
	Write(n int)
	// SendMessage frames an application value onto the stream, occupying
	// wireLen stream bytes. The peer's OnMessage observes the value once
	// the framing byte range is delivered in order.
	SendMessage(val any, wireLen int)
	// Buffered returns the number of stream bytes accepted by Write or
	// SendMessage and not yet acknowledged/flushed — the backpressure
	// signal applications pace against (see OnWritable).
	Buffered() int64

	// Close ends the stream gracefully: queued data is delivered, the
	// local side observes OnClose(ErrClosed), the peer OnClose(nil).
	Close()
	// Abort tears the connection down immediately: the local side observes
	// OnClose(ErrClosed), the peer OnClose(ErrReset).
	Abort()

	// SetOnEstablished registers the handshake-completion callback.
	SetOnEstablished(func())
	// SetOnDeliver registers the in-order payload callback (n new bytes).
	SetOnDeliver(func(n int))
	// SetOnMessage registers the framed-message callback.
	SetOnMessage(func(val any))
	// SetOnClose registers the teardown callback. It fires exactly once,
	// whatever ends the connection.
	SetOnClose(func(err error))
	// SetOnWritable registers the send-buffer-drained callback.
	SetOnWritable(func())
}

// Listener accepts inbound connections on a port.
type Listener interface {
	// Port returns the bound (virtual) port.
	Port() uint16
	// Close stops accepting. Established connections are unaffected; a
	// connection attempt arriving after Close is refused (RST), never
	// delivered to a stale accept callback. The port is immediately free
	// for a fresh Listen.
	Close()
}

// Interface is one host's transport: the dialing/listening surface the
// protocol packages speak to.
type Interface interface {
	// Engine returns the event engine driving this host's callbacks and
	// timers. Under the net backend the engine advances with the wall
	// clock (see Group); protocol timers work identically on both.
	Engine() *sim.Engine
	// Addr returns this host's virtual address with the given port.
	Addr(port uint16) netem.Addr
	// Dial opens a connection to a remote virtual address. The returned
	// Conn is not yet established; set callbacks before the event loop
	// resumes. Dial fails fast only for local errors (ErrPortExhausted);
	// remote failures arrive through OnClose.
	Dial(remote netem.Addr) (Conn, error)
	// Listen binds port and delivers inbound connections to onAccept.
	// Callbacks for the new Conn should be set inside onAccept.
	Listen(port uint16, onAccept func(Conn)) (Listener, error)
}

// IfaceProvider is an optional capability of transports backed by a
// simulated network interface. Packet-level machinery (wp2p's AM filter and
// redundant-request probing) requires it; such features are sim-only and
// must type-assert.
type IfaceProvider interface {
	Iface() *netem.Iface
}

// StackProvider is an optional capability of transports backed by the
// modelled TCP stack, for packet-level observers (wp2p's flow tracker).
type StackProvider interface {
	Stack() *tcp.Stack
}

// ConnStats is an optional capability of connections that expose modelled
// TCP counters (sim backend only); diagnostics type-assert for it.
type ConnStats interface {
	Stats() tcp.Stats
}

// ConnDebug is an optional capability of connections that can print
// low-level transport state (sim backend only).
type ConnDebug interface {
	DebugState() string
}
