package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
)

// The conformance suite runs every behavioural contract against both
// backends: the deterministic sim adapter and the real-socket loopback
// backend. Anything protocol code may rely on — dial/accept ordering, data
// integrity under concurrent streams, close/RST propagation, addr reuse
// after close, the error contract — must hold identically on both.

// backend abstracts "a world of hosts" over either implementation.
type backend interface {
	name() string
	// host returns the transport for virtual IP ip (stable across calls).
	host(ip netem.IP) Interface
	// do runs fn on the event goroutine (sim: inline; net: the run loop).
	do(fn func())
	// wait advances the world until cond (evaluated on the event
	// goroutine) holds, or fails the test after a generous deadline.
	wait(t *testing.T, desc string, cond func() bool)
	close()
}

type simBackend struct {
	engine *sim.Engine
	netw   *netem.Network
	hosts  map[netem.IP]Interface
}

func newSimBackend() *simBackend {
	e := sim.NewEngine(sim.WithSeed(7))
	n := netem.NewNetwork(e, netem.NetworkConfig{CloudDelay: 10 * time.Millisecond})
	return &simBackend{engine: e, netw: n, hosts: make(map[netem.IP]Interface)}
}

func (b *simBackend) name() string { return "sim" }

func (b *simBackend) host(ip netem.IP) Interface {
	if h, ok := b.hosts[ip]; ok {
		return h
	}
	link := netem.NewAccessLink(b.engine, netem.AccessLinkConfig{
		UpRate:   10 * netem.MBps,
		DownRate: 10 * netem.MBps,
		Delay:    time.Millisecond,
	})
	iface := b.netw.Attach(ip, link, nil)
	h := NewSim(tcp.NewStack(b.engine, iface, tcp.Config{}))
	b.hosts[ip] = h
	return h
}

func (b *simBackend) do(fn func()) { fn() }

func (b *simBackend) wait(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	for i := 0; i < 600 && !cond(); i++ {
		b.engine.RunFor(100 * time.Millisecond)
	}
	if !cond() {
		t.Fatalf("sim: timed out waiting for %s", desc)
	}
}

func (b *simBackend) close() {}

type netBackend struct {
	group *Group
}

func newNetBackend() *netBackend { return &netBackend{group: NewGroup(7)} }

func (b *netBackend) name() string               { return "net" }
func (b *netBackend) host(ip netem.IP) Interface { return b.group.Host(ip) }
func (b *netBackend) do(fn func())               { b.group.Do(fn) }
func (b *netBackend) close()                     { b.group.Close() }

func (b *netBackend) wait(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		ok := false
		b.group.Do(func() { ok = cond() })
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("net: timed out waiting for %s", desc)
}

func forEachBackend(t *testing.T, fn func(t *testing.T, b backend)) {
	t.Run("sim", func(t *testing.T) {
		b := newSimBackend()
		defer b.close()
		fn(t, b)
	})
	t.Run("net", func(t *testing.T) {
		b := newNetBackend()
		defer b.close()
		fn(t, b)
	})
}

func TestConformanceDialAccept(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			accepted    []Conn
			cliEst      bool
			srvEst      bool
			client      Conn
			clientLocal netem.Addr
		)
		b.do(func() {
			_, err := h2.Listen(80, func(c Conn) {
				accepted = append(accepted, c)
				c.SetOnEstablished(func() { srvEst = true })
			})
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			c, err := h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			client = c
			clientLocal = c.LocalAddr()
			c.SetOnEstablished(func() { cliEst = true })
		})
		b.wait(t, "both sides established", func() bool { return cliEst && srvEst })
		b.do(func() {
			if len(accepted) != 1 {
				t.Errorf("accepted %d conns, want 1", len(accepted))
				return
			}
			srv := accepted[0]
			if got := client.RemoteAddr(); got != h2.Addr(80) {
				t.Errorf("client remote = %v, want %v", got, h2.Addr(80))
			}
			if got := srv.LocalAddr(); got != h2.Addr(80) {
				t.Errorf("server local = %v, want %v", got, h2.Addr(80))
			}
			if got := srv.RemoteAddr(); got != clientLocal {
				t.Errorf("server remote = %v, want client local %v", got, clientLocal)
			}
			if clientLocal.Port < 49152 {
				t.Errorf("client port %d outside the ephemeral range", clientLocal.Port)
			}
		})
	})
}

// streamMsg is the conformance payload: enough identity to detect
// reordering or cross-stream leaks.
type streamMsg struct {
	Stream int
	Seq    int
}

func TestConformanceDataIntegrityConcurrentStreams(t *testing.T) {
	const (
		streams = 3
		msgs    = 120
		msgWire = 150
		replyW  = 40
	)
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		type side struct {
			got       []streamMsg
			delivered int64
			replies   int
		}
		srv := make([]*side, 0, streams) // per accepted conn, in accept order
		cli := make([]*side, streams)    // per dialled conn

		b.do(func() {
			_, err := h2.Listen(80, func(c Conn) {
				s := &side{}
				srv = append(srv, s)
				c.SetOnDeliver(func(n int) { s.delivered += int64(n) })
				c.SetOnMessage(func(v any) {
					m := v.(streamMsg)
					s.got = append(s.got, m)
					// Echo a reply so the reverse direction is exercised
					// concurrently on every stream.
					c.SendMessage(streamMsg{Stream: m.Stream, Seq: -m.Seq}, replyW)
				})
			})
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			for i := 0; i < streams; i++ {
				i := i
				c, err := h1.Dial(h2.Addr(80))
				if err != nil {
					t.Errorf("dial %d: %v", i, err)
					return
				}
				cs := &side{}
				cli[i] = cs
				c.SetOnMessage(func(v any) { cs.replies++ })
				c.SetOnDeliver(func(n int) { cs.delivered += int64(n) })
				c.SetOnEstablished(func() {
					for m := 0; m < msgs; m++ {
						c.SendMessage(streamMsg{Stream: i, Seq: m}, msgWire)
					}
				})
			}
		})
		b.wait(t, "all messages and replies delivered", func() bool {
			total, replies := 0, 0
			for _, s := range srv {
				total += len(s.got)
			}
			for _, s := range cli {
				replies += s.replies
			}
			return total == streams*msgs && replies == streams*msgs
		})
		b.do(func() {
			if len(srv) != streams {
				t.Fatalf("accepted %d conns, want %d", len(srv), streams)
			}
			seen := map[int]bool{}
			for _, s := range srv {
				if len(s.got) == 0 {
					t.Fatal("a server conn received nothing")
				}
				stream := s.got[0].Stream
				if seen[stream] {
					t.Errorf("stream %d delivered on two conns", stream)
				}
				seen[stream] = true
				for i, m := range s.got {
					if m.Stream != stream || m.Seq != i {
						t.Fatalf("stream %d msg %d = %+v: reordered or leaked", stream, i, m)
					}
				}
				if s.delivered != int64(msgs*msgWire) {
					t.Errorf("stream %d delivered %d bytes, want %d", stream, s.delivered, msgs*msgWire)
				}
			}
			for i, s := range cli {
				if s.replies != msgs {
					t.Errorf("stream %d got %d replies, want %d", i, s.replies, msgs)
				}
				if s.delivered != int64(msgs*replyW) {
					t.Errorf("stream %d reply bytes = %d, want %d", i, s.delivered, msgs*replyW)
				}
			}
		})
	})
}

func TestConformanceRawWriteDelivery(t *testing.T) {
	const rawBytes = 1 << 20
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			got      int64
			chunks   int
			maxChunk int
			cliEst   bool
		)
		b.do(func() {
			_, err := h2.Listen(80, func(c Conn) {
				c.SetOnEstablished(func() { c.Write(rawBytes) })
			})
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			c, err := h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetOnEstablished(func() { cliEst = true })
			c.SetOnDeliver(func(n int) {
				got += int64(n)
				chunks++
				if n > maxChunk {
					maxChunk = n
				}
			})
		})
		b.wait(t, "bulk payload delivered", func() bool { return got >= rawBytes })
		b.do(func() {
			if !cliEst {
				t.Error("client never established")
			}
			if got != rawBytes {
				t.Errorf("delivered %d bytes, want exactly %d", got, rawBytes)
			}
			if chunks < 2 {
				t.Errorf("bulk delivery arrived in %d chunk(s); want streaming progress", chunks)
			}
		})
	})
}

func TestConformanceClosePropagation(t *testing.T) {
	const msgs = 25
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			srvGot    int
			srvClose  error
			srvClosed bool
			cliClose  error
			cliClosed bool
		)
		b.do(func() {
			_, err := h2.Listen(80, func(c Conn) {
				c.SetOnMessage(func(any) { srvGot++ })
				c.SetOnClose(func(err error) { srvClose, srvClosed = err, true })
			})
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			c, err := h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetOnClose(func(err error) { cliClose, cliClosed = err, true })
			c.SetOnEstablished(func() {
				for i := 0; i < msgs; i++ {
					c.SendMessage(streamMsg{Seq: i}, 64)
				}
				c.Close()
			})
		})
		b.wait(t, "both close callbacks", func() bool { return srvClosed && cliClosed })
		b.do(func() {
			if srvGot != msgs {
				t.Errorf("server got %d msgs before close, want %d (close must not outrun data)", srvGot, msgs)
			}
			if srvClose != nil {
				t.Errorf("server close err = %v, want nil (graceful)", srvClose)
			}
			if !errors.Is(cliClose, ErrClosed) {
				t.Errorf("client close err = %v, want ErrClosed", cliClose)
			}
		})
	})
}

func TestConformanceAbortReset(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			srvClose  error
			srvClosed bool
			cliClose  error
			cliClosed bool
		)
		b.do(func() {
			_, err := h2.Listen(80, func(c Conn) {
				c.SetOnClose(func(err error) { srvClose, srvClosed = err, true })
			})
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			c, err := h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetOnClose(func(err error) { cliClose, cliClosed = err, true })
			c.SetOnEstablished(func() { c.Abort() })
		})
		b.wait(t, "both close callbacks", func() bool { return srvClosed && cliClosed })
		b.do(func() {
			if !errors.Is(srvClose, ErrReset) {
				t.Errorf("server close err = %v, want ErrReset", srvClose)
			}
			if !errors.Is(cliClose, ErrClosed) {
				t.Errorf("client close err = %v, want ErrClosed", cliClose)
			}
		})
	})
}

func TestConformanceDialRefused(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			refused error
			closed  bool
		)
		b.do(func() {
			c, err := h1.Dial(h2.Addr(4444)) // nothing listens there
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetOnClose(func(err error) { refused, closed = err, true })
		})
		b.wait(t, "refusal", func() bool { return closed })
		b.do(func() {
			if !errors.Is(refused, ErrReset) {
				t.Errorf("refused dial err = %v, want ErrReset", refused)
			}
		})
	})
}

func TestConformanceListenAddrInUse(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h := b.host(1)
		b.do(func() {
			if _, err := h.Listen(80, nil); err != nil {
				t.Errorf("first listen: %v", err)
				return
			}
			if _, err := h.Listen(80, nil); !errors.Is(err, ErrAddrInUse) {
				t.Errorf("second listen = %v, want ErrAddrInUse", err)
			}
			// A different host may bind the same virtual port.
			if _, err := b.host(2).Listen(80, nil); err != nil {
				t.Errorf("other-host listen: %v", err)
			}
		})
	})
}

func TestConformanceAddrReuseAfterClose(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var stale, fresh int
		var est bool
		b.do(func() {
			l, err := h2.Listen(80, func(c Conn) { stale++ })
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			l.Close()
			if _, err := h2.Listen(80, func(c Conn) { fresh++ }); err != nil {
				t.Errorf("re-listen after close: %v", err)
				return
			}
			l.Close() // stale handle again: must not evict the fresh listener
			c, err := h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetOnEstablished(func() { est = true })
		})
		b.wait(t, "established to rebound port", func() bool { return est })
		b.do(func() {
			if stale != 0 || fresh != 1 {
				t.Errorf("accepts: stale=%d fresh=%d, want 0/1", stale, fresh)
			}
		})
	})
}

// TestConformanceListenerCloseRefusesInFlight is the cross-backend
// regression test for the in-flight-SYN audit: a dial racing a listener
// close must either be refused (ErrReset) — never delivered to the stale
// accept callback.
func TestConformanceListenerCloseRefusesInFlight(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			accepted int
			closed   bool
			closeErr error
		)
		b.do(func() {
			l, err := h2.Listen(80, func(c Conn) { accepted++ })
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			c, err := h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetOnClose(func(err error) { closeErr, closed = err, true })
			// Close while the connection attempt is in flight.
			l.Close()
		})
		b.wait(t, "dial outcome", func() bool { return closed })
		b.do(func() {
			if accepted != 0 {
				t.Errorf("stale onAccept ran %d times after Close", accepted)
			}
			if !errors.Is(closeErr, ErrReset) {
				t.Errorf("in-flight dial err = %v, want ErrReset", closeErr)
			}
		})
	})
}

func TestConformanceEstablishedSurvivesListenerClose(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			l       Listener
			got     int
			est     bool
			srvConn Conn
			client  Conn
		)
		b.do(func() {
			var err error
			l, err = h2.Listen(80, func(c Conn) {
				srvConn = c
				c.SetOnMessage(func(any) { got++ })
			})
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			client, err = h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			client.SetOnEstablished(func() { est = true })
		})
		b.wait(t, "established and accepted", func() bool { return est && srvConn != nil })
		b.do(func() {
			// The conn is fully up on both sides; closing the listener must
			// not hurt it.
			l.Close()
			client.SendMessage(streamMsg{Seq: 1}, 64)
		})
		b.wait(t, "message after listener close", func() bool { return got == 1 })
	})
}

// TestConformanceBackpressureSignals checks Buffered/OnWritable behave as a
// pacing signal on both backends: bytes accumulate while queued and
// OnWritable eventually reports drain progress.
func TestConformanceBackpressureSignals(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b backend) {
		h1, h2 := b.host(1), b.host(2)
		var (
			writable int
			maxBuf   int64
			drained  bool
		)
		b.do(func() {
			_, err := h2.Listen(80, nil)
			if err != nil {
				t.Errorf("listen: %v", err)
				return
			}
			c, err := h1.Dial(h2.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			c.SetOnWritable(func() {
				writable++
				if c.Buffered() == 0 {
					drained = true
				}
			})
			c.SetOnEstablished(func() {
				for i := 0; i < 64; i++ {
					c.Write(16 << 10)
				}
				if buf := c.Buffered(); buf > maxBuf {
					maxBuf = buf
				}
			})
		})
		b.wait(t, "send buffer drained", func() bool { return drained })
		b.do(func() {
			if writable == 0 {
				t.Error("OnWritable never fired")
			}
			if maxBuf == 0 {
				t.Error("Buffered never reflected queued bytes")
			}
		})
	})
}

// TestNetVirtualPortExhaustion pins the net backend's virtual allocator to
// the same exhaustion contract as the sim stack.
func TestNetVirtualPortExhaustion(t *testing.T) {
	g := NewGroup(1)
	defer g.Close()
	h := g.Host(1)
	g.Do(func() {
		for p := uint32(ephemeralBase); p <= 0xffff; p++ {
			h.inUse[uint16(p)] = true
		}
		if _, err := h.allocPort(); !errors.Is(err, ErrPortExhausted) {
			t.Errorf("allocPort = %v, want ErrPortExhausted", err)
		}
		if _, err := h.Dial(netem.Addr{IP: 2, Port: 80}); !errors.Is(err, ErrPortExhausted) {
			t.Errorf("Dial = %v, want ErrPortExhausted", err)
		}
	})
}

// TestNetAddrsAreVirtual pins that live-backend conns still speak the
// virtual address space the protocols reason about.
func TestNetAddrsAreVirtual(t *testing.T) {
	g := NewGroup(1)
	defer g.Close()
	h1, h2 := g.Host(1), g.Host(2)
	var addrs []string
	g.Do(func() {
		if _, err := h2.Listen(80, nil); err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		c, err := h1.Dial(h2.Addr(80))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		addrs = append(addrs, c.LocalAddr().String(), c.RemoteAddr().String())
	})
	want := fmt.Sprintf("%s", netem.Addr{IP: 2, Port: 80})
	if len(addrs) == 2 && addrs[1] != want {
		t.Errorf("remote addr = %s, want virtual %s", addrs[1], want)
	}
}
