package transport

import (
	"github.com/wp2p/wp2p/internal/netem"
	"github.com/wp2p/wp2p/internal/sim"
	"github.com/wp2p/wp2p/internal/tcp"
)

// Sim adapts the deterministic packet-level tcp.Stack to the transport
// interface. It is a zero-cost seam: *tcp.Conn itself satisfies Conn and
// *tcp.Listener satisfies Listener, so no wrapper object sits on any hot
// path and the simulation's event trajectory — and therefore its digests
// and exports — is byte-identical to calling the stack directly.
type Sim struct {
	stack *tcp.Stack
}

// NewSim wraps a modelled TCP stack.
func NewSim(stack *tcp.Stack) *Sim { return &Sim{stack: stack} }

// Stack exposes the underlying modelled stack (StackProvider).
func (t *Sim) Stack() *tcp.Stack { return t.stack }

// Iface exposes the underlying network interface (IfaceProvider).
func (t *Sim) Iface() *netem.Iface { return t.stack.Iface() }

// Engine returns the simulation engine.
func (t *Sim) Engine() *sim.Engine { return t.stack.Engine() }

// Addr returns the host's current address with the given port.
func (t *Sim) Addr(port uint16) netem.Addr { return t.stack.Addr(port) }

// Dial opens a modelled connection and sends the initial SYN.
func (t *Sim) Dial(remote netem.Addr) (Conn, error) {
	c, err := t.stack.Dial(remote)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Listen binds a modelled listener on port.
func (t *Sim) Listen(port uint16, onAccept func(Conn)) (Listener, error) {
	var fn func(*tcp.Conn)
	if onAccept != nil {
		fn = func(c *tcp.Conn) { onAccept(c) }
	}
	l, err := t.stack.Listen(port, fn)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Interface-satisfaction pins: the adapter, the modelled conn and listener,
// and the optional capabilities.
var (
	_ Interface     = (*Sim)(nil)
	_ IfaceProvider = (*Sim)(nil)
	_ StackProvider = (*Sim)(nil)
	_ Conn          = (*tcp.Conn)(nil)
	_ ConnStats     = (*tcp.Conn)(nil)
	_ ConnDebug     = (*tcp.Conn)(nil)
	_ Listener      = (*tcp.Listener)(nil)
)
