package runner

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got := MapWorkers(workers, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := MapWorkers(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("empty map returned %v", got)
	}
}

func TestMapSequentialRunsInline(t *testing.T) {
	// workers <= 1 must run on the caller's goroutine, in index order.
	var order []int
	MapWorkers(1, 5, func(i int) int {
		order = append(order, i) // safe only if inline
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T %v, want *Panic", r, r)
		}
		// The lowest failed index wins, deterministically.
		if p.Index != 3 {
			t.Errorf("Panic.Index = %d, want 3", p.Index)
		}
		if p.Value != "boom" {
			t.Errorf("Panic.Value = %v, want boom", p.Value)
		}
		if len(p.Stack) == 0 {
			t.Error("Panic.Stack empty")
		}
	}()
	MapWorkers(4, 10, func(i int) int {
		if i == 3 || i == 7 {
			panic("boom")
		}
		return i
	})
	t.Fatal("MapWorkers did not re-panic")
}

func TestParallelMatchesSequentialReduction(t *testing.T) {
	fn := func(r int) float64 { return 1.0 / float64(r+1) }
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	seq := Average(50, fn)
	SetWorkers(8)
	par := Average(50, fn)
	if seq != par {
		t.Fatalf("Average diverged: sequential %v vs parallel %v", seq, par)
	}
	sfn := func(r int) []float64 { return []float64{float64(r) / 3, float64(r) / 7} }
	SetWorkers(1)
	seqS := AverageSeries(40, sfn)
	SetWorkers(8)
	parS := AverageSeries(40, sfn)
	for i := range seqS {
		if seqS[i] != parS[i] {
			t.Fatalf("AverageSeries diverged at %d: %v vs %v", i, seqS, parS)
		}
	}
}

func TestSweep(t *testing.T) {
	xs := []float64{0, 0.5, 1.5}
	ys := Sweep(xs, func(i int, x float64) float64 { return x * 2 })
	want := []float64{0, 1, 3}
	for i := range want {
		if ys[i] != want[i] {
			t.Fatalf("Sweep = %v, want %v", ys, want)
		}
	}
}

func TestStreamConsumesInOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var consumed []int
		Stream(workers, 20, func(i int) int { return i * 3 }, func(i, v int) {
			if v != i*3 {
				t.Fatalf("workers=%d: consume(%d, %d)", workers, i, v)
			}
			consumed = append(consumed, i)
		})
		if len(consumed) != 20 {
			t.Fatalf("workers=%d: consumed %d results", workers, len(consumed))
		}
		for i, v := range consumed {
			if v != i {
				t.Fatalf("workers=%d: consume order = %v", workers, consumed)
			}
		}
	}
}

func TestStreamPanicPropagates(t *testing.T) {
	var consumed atomic.Int64
	defer func() {
		if _, ok := recover().(*Panic); !ok {
			t.Fatal("Stream did not re-panic with *Panic")
		}
		// Results before the failed index were consumed; none after.
		if n := consumed.Load(); n != 5 {
			t.Errorf("consumed %d results, want 5", n)
		}
	}()
	Stream(4, 10, func(i int) int {
		if i == 5 {
			panic("boom")
		}
		return i
	}, func(i, v int) { consumed.Add(1) })
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if old := SetWorkers(0); old != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", old)
	}
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS default", Workers())
	}
}
