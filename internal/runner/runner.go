// Package runner fans independent simulation runs across a worker pool.
//
// Every figure in the reproduction is a sweep of fully independent,
// deterministically-seeded runs: each run builds its own private
// Engine/World/RNG, so runs can execute concurrently without sharing any
// state. The helpers here exploit that while preserving the repo's core
// invariant — results are delivered by submission index, never by
// completion order, and all floating-point reductions happen sequentially
// in index order, so a parallel execution is bit-identical to a
// sequential one.
//
// The pool size defaults to runtime.GOMAXPROCS(0) and can be overridden
// globally with SetWorkers (the -parallel flag of wp2p-sim) or per call
// with the *Workers variants. A size of 1 runs everything inline on the
// caller's goroutine.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the process-wide default pool size; 0 means "use
// runtime.GOMAXPROCS(0)". Atomic so tests and the CLI can retune it while
// experiments run.
var workers atomic.Int64

// Workers returns the current default pool size.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the default pool size for subsequent Map/Sweep/Average
// calls. n <= 0 restores the GOMAXPROCS default. It returns the previous
// setting (0 if it was the default), so callers can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workers.Swap(int64(n)))
}

// Panic is the value re-panicked on the caller's goroutine when a run
// panics inside the pool. It preserves the original value and the
// worker's stack so the failure points at the simulation, not the pool.
type Panic struct {
	Index int    // submission index of the failed run
	Value any    // the original panic value
	Stack []byte // the worker goroutine's stack at the point of panic
}

func (p *Panic) Error() string {
	return fmt.Sprintf("runner: run %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Map runs fn(i) for i in [0, n) on the default pool and returns the
// results in index order.
func Map[T any](n int, fn func(i int) T) []T {
	return MapWorkers(Workers(), n, fn)
}

// MapWorkers is Map with an explicit pool size. workers <= 1 runs every
// call inline on the caller's goroutine, in index order — the sequential
// reference path. If a run panics, MapWorkers waits for the remaining
// in-flight runs and re-panics with a *Panic for the lowest failed index.
func MapWorkers[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		panics = make([]*Panic, n)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Each index is claimed by exactly one worker, so the
				// out/panics writes are race-free.
				out[i], panics[i] = protect(i, fn)
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return out
}

// protect executes fn(i), converting a panic into a *Panic value.
func protect[T any](i int, fn func(i int) T) (v T, p *Panic) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			p = &Panic{Index: i, Value: r, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	v = fn(i)
	return v, nil
}

// Sweep maps each x-axis point to fn(i, x) on the default pool — the
// fan-out shape of every figure's outer loop. Results land in x order.
func Sweep[X, Y any](xs []X, fn func(i int, x X) Y) []Y {
	return Map(len(xs), func(i int) Y { return fn(i, xs[i]) })
}

// Average runs fn for run indices [0, runs) on the default pool and
// returns the mean. The sum is reduced in run order after all results are
// in, so the value is independent of completion order.
func Average(runs int, fn func(run int) float64) float64 {
	ys := Map(runs, fn)
	sum := 0.0
	for _, y := range ys {
		sum += y
	}
	return sum / float64(runs)
}

// AverageSeries is Average for runs that produce a whole series: the
// element-wise mean of fn(0..runs-1), reduced in run order. All runs must
// return series of the same length.
func AverageSeries(runs int, fn func(run int) []float64) []float64 {
	series := Map(runs, fn)
	if len(series) == 0 || len(series[0]) == 0 {
		return nil
	}
	acc := make([]float64, len(series[0]))
	for _, ys := range series {
		for i, y := range ys {
			acc[i] += y
		}
	}
	for i := range acc {
		acc[i] /= float64(runs)
	}
	return acc
}

// Stream runs fn(i) for i in [0, n) on a pool of the given size and hands
// each result to consume(i, v) in strict index order, as soon as the next
// index is ready — so a CLI can print experiment tables in submission
// order while later experiments are still running. consume runs on the
// caller's goroutine. workers <= 1 degenerates to a sequential
// fn/consume loop. Panics propagate like MapWorkers.
func Stream[T any](workers, n int, fn func(i int) T, consume func(i int, v T)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			consume(i, fn(i))
		}
		return
	}
	type slot struct {
		v   T
		err *Panic
	}
	ready := make([]chan slot, n)
	for i := range ready {
		ready[i] = make(chan slot, 1)
	}
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, p := protect(i, fn)
				ready[i] <- slot{v: v, err: p}
			}
		}()
	}
	var failed *Panic
	for i := 0; i < n; i++ {
		s := <-ready[i]
		if s.err != nil {
			if failed == nil {
				failed = s.err
			}
			continue
		}
		if failed == nil {
			consume(i, s.v)
		}
	}
	if failed != nil {
		panic(failed)
	}
}
